"""E15 — the serving engine: cache speedup and batched decisions.

A repeated-decision serving workload (a fixed pool of policy programs,
each requested many times, as a steady-state PDP/PCP would) is run
through a caching :class:`~repro.engine.PolicyEngine` and through an
identical engine with every cache disabled.  The contract under test:

* the cached engine answers the whole workload at **>= 5x** the
  uncached throughput (warm hits skip parse + ground + solve entirely);
* every response is **element-for-element identical** to the uncached
  one — same answer sets, same order (the byte-identical guarantee the
  fingerprint keys provide);
* batched decision serving (``decide_many``) resolves each distinct
  request once while still logging one monitoring record per request.

Cache hit/miss/eviction counters land in the BENCH_e15 artifacts via
the module telemetry session.
"""

import time

import pytest

from repro.agenp.interpreters import FieldInterpreter
from repro.agenp.repositories import PolicyRepository, StoredPolicy
from repro.engine import PolicyEngine
from repro.policy.model import Decision, Request

ROLES = ("dba", "dev", "auditor")


def serving_pool(n_programs=8, n_users=8, n_resources=10):
    """A pool of access-control programs with genuine search effort.

    Each program mixes stratified permit rules with a choice over audit
    assignments and a constraint, so solving costs real propagation and
    the stability machinery stays engaged.
    """
    pool = []
    for p in range(n_programs):
        lines = [f"shard(s{p})."]  # keep every pool program distinct
        for u in range(n_users):
            lines.append(f"role(u{u}, {ROLES[(u + p) % len(ROLES)]}).")
        for r in range(n_resources):
            rtype = "db" if (r + p) % 2 == 0 else "doc"
            lines.append(f"rtype(r{r}, {rtype}).")
            if (r + p) % 3 == 0:
                lines.append(f"sensitive(r{r}).")
        lines += [
            "permit(U, R) :- role(U, dba), rtype(R, db).",
            "permit(U, R) :- role(U, dev), rtype(R, doc), not sensitive(R).",
            "audit(R) :- sensitive(R), not waived(R).",
            "waived(R) :- sensitive(R), not audit(R).",
        ]
        pool.append("\n".join(lines))
    return pool


def run_workload(engine, pool, repeats):
    """Serve ``repeats`` passes over the pool; return (answers, seconds)."""
    answers = []
    start = time.monotonic()
    for _ in range(repeats):
        for text in pool:
            answers.append(list(engine.solve_text(text)))
    return answers, time.monotonic() - start


def test_cached_serving_speedup(report, benchmark):
    pool = serving_pool()
    repeats = 10
    cached = PolicyEngine()
    uncached = PolicyEngine(
        parse_cache_size=0, ground_cache_size=0, solve_cache_size=0
    )

    cold_answers, cold_s = run_workload(uncached, pool, repeats)
    warm_answers, warm_s = run_workload(cached, pool, repeats)

    # element-for-element identical answer sets, in the same order
    assert warm_answers == cold_answers

    requests = repeats * len(pool)
    cold_rps = requests / cold_s
    warm_rps = requests / warm_s
    speedup = warm_rps / cold_rps
    stats = cached.stats()

    report(
        "E15 — cached vs uncached serving",
        f"{'config':>10} {'requests':>9} {'seconds':>9} {'req/s':>9}",
        f"{'uncached':>10} {requests:>9} {cold_s:>9.3f} {cold_rps:>9.1f}",
        f"{'cached':>10} {requests:>9} {warm_s:>9.3f} {warm_rps:>9.1f}",
        f"speedup: {speedup:.1f}x   solve cache: "
        f"{stats.caches['solve']['hits']} hits / "
        f"{stats.caches['solve']['misses']} misses "
        f"(hit rate {stats.caches['solve']['hit_rate']:.0%})",
    )

    # the acceptance bar: a repeated-decision workload serves >= 5x faster
    assert speedup >= 5.0, f"cache speedup {speedup:.1f}x below the 5x bar"
    assert stats.caches["solve"]["misses"] == len(pool)
    assert stats.caches["solve"]["hits"] == requests - len(pool)

    benchmark.pedantic(
        lambda: run_workload(cached, pool, 2), rounds=3, iterations=1
    )


def test_batched_decisions(report, benchmark):
    repository = PolicyRepository()
    for u in range(12):
        effect = "allow" if u % 3 else "deny"
        repository.add(StoredPolicy((effect, f"user{u}", "read")))
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})

    requests = [
        Request({"subject": {"id": f"user{i % 20}"}, "action": {"id": "read"}})
        for i in range(600)
    ]

    serial = PolicyEngine(repository, interpreter, decision_cache_size=0)
    start = time.monotonic()
    singles = [serial.decide(r).decision for r in requests]
    serial_s = time.monotonic() - start

    batched = PolicyEngine(repository, interpreter)
    start = time.monotonic()
    records = batched.decide_many(requests)
    batch_s = time.monotonic() - start

    assert [r.decision for r in records] == singles
    assert len(batched.pdp.log) == len(requests)
    # 20 distinct requests; each resolved exactly once
    assert batched.decision_cache.stats.misses == 20

    report(
        "E15 — batched decision serving",
        f"{'mode':>8} {'requests':>9} {'seconds':>9} {'decisions/s':>12}",
        f"{'serial':>8} {len(requests):>9} {serial_s:>9.3f} "
        f"{len(requests) / serial_s:>12.0f}",
        f"{'batched':>8} {len(requests):>9} {batch_s:>9.3f} "
        f"{len(requests) / batch_s:>12.0f}",
        f"unique requests resolved: {batched.decision_cache.stats.misses} of "
        f"{len(requests)}",
    )

    benchmark.pedantic(
        lambda: PolicyEngine(repository, interpreter).decide_many(requests),
        rounds=3,
        iterations=1,
    )


def test_invalidation_end_to_end(report):
    """A policy update mid-stream must flip served decisions immediately."""
    repository = PolicyRepository()
    repository.add(StoredPolicy(("allow", "alice", "read")))
    interpreter = FieldInterpreter({1: ("subject", "id"), 2: ("action", "id")})
    engine = PolicyEngine(repository, interpreter)
    req = Request({"subject": {"id": "alice"}, "action": {"id": "read"}})

    before = [engine.decide(req).decision for _ in range(50)]
    repository.add(StoredPolicy(("deny", "alice", "read")))  # PAdaP update
    after = [engine.decide(req).decision for _ in range(50)]

    assert set(before) == {Decision.PERMIT}
    assert set(after) == {Decision.DENY}
    report(
        "E15 — generation-counter invalidation",
        f"50 cached permits, policy update, 50 denies; "
        f"decision cache misses={engine.decision_cache.stats.misses} "
        f"hits={engine.decision_cache.stats.hits}",
    )
