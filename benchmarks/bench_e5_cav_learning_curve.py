"""E5 — Section IV.A: ASG-GPM vs shallow ML learning curves (CAV domain).

The paper (citing Cunnington et al. [25]): "the ASG based GPM
outperforms shallow Machine Learning techniques when learning complex
policy models, as fewer examples are required to achieve a greater
accuracy."

Expected shape: the symbolic learner's curve dominates at small sample
counts and saturates at 1.0 with far fewer examples; the shallow
baselines climb slower and may never reach 1.0 at these sizes.
"""

import numpy as np
import pytest

from repro.apps.cav import CavSymbolicLearner, sample_scenarios
from repro.baselines import (
    BernoulliNaiveBayes,
    DecisionTreeClassifier,
    KNNClassifier,
    LogisticRegression,
    OneHotEncoder,
)
from repro.learning import accuracy

BASELINES = {
    "dtree": DecisionTreeClassifier,
    "nbayes": BernoulliNaiveBayes,
    "logreg": LogisticRegression,
    "3nn": KNNClassifier,
}

SIZES = (8, 16, 32, 64)


def shallow_accuracy(cls, train, test, labels):
    encoder = OneHotEncoder().fit([s.features() for s, __ in train])
    X_train = encoder.transform([s.features() for s, __ in train])
    y_train = np.array([int(label) for __, label in train])
    model = cls().fit(X_train, y_train)
    X_test = encoder.transform([s.features() for s, __ in test])
    return accuracy([bool(p) for p in model.predict(X_test)], labels)


def _curves():
    test = sample_scenarios(200, seed=2024)
    labels = [label for __, label in test]
    scenarios = [s for s, __ in test]
    table = {}
    for n in SIZES:
        train = sample_scenarios(n, seed=7)
        symbolic = CavSymbolicLearner().fit(train)
        row = {"asg-gpm": accuracy(symbolic.predict(scenarios), labels)}
        for name, cls in BASELINES.items():
            row[name] = shallow_accuracy(cls, train, test, labels)
        table[n] = row
    return table


def test_learning_curves(report, benchmark):
    curves = benchmark.pedantic(_curves, rounds=1, iterations=1)
    names = ["asg-gpm"] + list(BASELINES)
    header = f"{'n':>4}" + "".join(f"{name:>10}" for name in names)
    rows = [
        f"{n:>4}" + "".join(f"{curves[n][name]:>10.3f}" for name in names)
        for n in SIZES
    ]
    report("E5 — CAV accept/reject learning curves (test accuracy)", header, *rows)

    # shape 1: symbolic dominates every baseline at every size
    for n in SIZES:
        for name in BASELINES:
            assert curves[n]["asg-gpm"] >= curves[n][name] - 1e-9
    # shape 2: symbolic saturates (>= 0.98) by n=32
    assert curves[32]["asg-gpm"] >= 0.98
    # shape 3: at the same point at least one baseline is still clearly behind
    assert min(curves[32][name] for name in BASELINES) < 0.95


def test_symbolic_fit_time(benchmark):
    train = sample_scenarios(32, seed=7)
    benchmark.pedantic(lambda: CavSymbolicLearner().fit(train), rounds=3, iterations=1)


def test_shallow_fit_time(benchmark):
    train = sample_scenarios(32, seed=7)
    encoder = OneHotEncoder().fit([s.features() for s, __ in train])
    X = encoder.transform([s.features() for s, __ in train])
    y = np.array([int(label) for __, label in train])
    benchmark(lambda: DecisionTreeClassifier().fit(X, y))
