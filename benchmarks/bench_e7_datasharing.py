"""E7 — Section IV.D: data-sharing policies with helper microservices.

Learns "which microservice to use for which context and data" (the
research direction the paper highlights for Verma et al.'s system) and
sweeps training-set size.

Expected shape: routing accuracy rises to 1.0 with a few dozen offers;
every decision the learned model makes on the training distribution is
one of the legal strings (refusals included).
"""

import pytest

from repro.apps.datasharing import (
    DataOffer,
    HELPERS,
    HelperSelectionLearner,
    sample_offers,
)

SIZES = (6, 12, 24, 48)


def _curve():
    test = sample_offers(120, seed=42)
    series = []
    for n in SIZES:
        learner = HelperSelectionLearner().fit(sample_offers(n, seed=1))
        series.append((n, learner.accuracy(test)))
    return series


def test_routing_accuracy_curve(report, benchmark):
    curve = benchmark.pedantic(_curve, rounds=1, iterations=1)
    report(
        "E7 — helper-microservice routing accuracy vs training offers",
        f"{'offers':>7} {'accuracy':>9}",
        *(f"{n:>7} {acc:>9.3f}" for n, acc in curve),
    )
    accuracies = [acc for __, acc in curve]
    assert accuracies[-1] >= 0.95
    assert accuracies[-1] >= accuracies[0]


def test_specific_routings(report, benchmark):
    offers = sample_offers(40, seed=1)
    learner = benchmark.pedantic(
        lambda: HelperSelectionLearner().fit(offers), rounds=1, iterations=1
    )
    cases = [
        DataOffer("trusted", "imagery", "high", "high"),
        DataOffer("untrusted", "signal", "high", "low"),
        DataOffer("trusted", "document", "low", "high"),
        DataOffer("untrusted", "imagery", "low", "low"),
    ]
    lines = []
    for offer in cases:
        decision = learner.decide(offer)
        lines.append(f"    {offer} -> {' '.join(decision)}")
        assert decision == learner.correct_string(offer)
    report("E7 — learned routing decisions", *lines)


def test_fit_time(benchmark):
    offers = sample_offers(24, seed=1)
    benchmark.pedantic(
        lambda: HelperSelectionLearner().fit(offers), rounds=3, iterations=1
    )
