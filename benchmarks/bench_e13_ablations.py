"""E13 — ablations of design choices called out in DESIGN.md.

* **Context placement** — Definition 3 adds the context program to
  *every* production (``where='all'``); Section III.A describes adding
  facts to the *start* productions only.  For rules that reference
  context atoms unannotated at the root, the two agree; this ablation
  measures the grounding-size/time cost of the literal Definition 3
  reading.
* **Statistical search guidance** (Section V.C) — candidate ordering
  learned from past episodes vs the default cost order, measured by the
  number of single-candidate probes until the first solution rule is
  reached (a proxy for learner work that is independent of caching).
"""

import time

import pytest

from repro.asp.atoms import Atom, Literal
from repro.asp.parser import parse_program
from repro.asp.terms import Constant
from repro.asg import accepts, parse_asg
from repro.learning import constraint_space
from repro.learning.guidance import SearchGuidance

GRAMMAR = """
policy -> "allow" subject action
subject -> "alice" { is(alice). }
subject -> "bob"   { is(bob). }
action  -> "read"  { is(read). }
action  -> "write" { is(write). }
"""


def pool(extra_context=("emergency", "lockdown")):
    out = [Literal(Atom("is", [Constant(n)], (2,)), True) for n in ("alice", "bob")]
    out += [Literal(Atom("is", [Constant(n)], (3,)), True) for n in ("read", "write")]
    for name in extra_context:
        out.append(Literal(Atom(name), True))
        out.append(Literal(Atom(name), False))
    return out


def test_context_placement(report, benchmark):
    asg = parse_asg(GRAMMAR)
    rule = parse_program(":- is(bob)@2, not emergency.").rules[0]
    learned = asg.with_rules([(rule, 0)])
    context = parse_program("emergency. lockdown. zone(a). zone(b).")
    tokens = ("allow", "bob", "read")

    results = {}
    for placement in ("all", "start"):
        grammar = learned.with_context(context, where=placement)
        start = time.monotonic()
        for __ in range(50):
            valid = accepts(grammar, tokens)
        results[placement] = (valid, time.monotonic() - start)
    report(
        "E13 — context placement: Definition 3 ('all') vs Section III.A ('start')",
        f"    all:   valid={results['all'][0]}  50 checks in {results['all'][1]:.3f}s",
        f"    start: valid={results['start'][0]}  50 checks in {results['start'][1]:.3f}s",
    )
    # both placements agree for root-level rules
    assert results["all"][0] == results["start"][0] is True
    grammar = learned.with_context(context, where="start")
    benchmark(lambda: accepts(grammar, tokens))


def test_guidance_ordering(report, benchmark):
    space = constraint_space(pool(), prod_ids=(0,), max_body=2)
    # simulated episode history: cross-position attribute pairs win
    guidance = SearchGuidance()
    winners = [
        c
        for c in space
        if len(c.rule.body) == 2
        and {lit.atom.annotation for lit in c.rule.body} == {(2,), (3,)}
    ]
    for winner in winners:
        guidance.record_episode(space, [winner])

    target_keys = {w.key() for w in winners}

    def probes_until_all_winners(candidates):
        found = 0
        for probes, candidate in enumerate(candidates, start=1):
            if candidate.key() in target_keys:
                found += 1
                if found == len(winners):
                    return probes
        return len(candidates)

    baseline = probes_until_all_winners(sorted(space, key=lambda c: c.cost))
    guided = probes_until_all_winners(guidance.order(space, respect_cost=False))
    report(
        "E13 — statistical guidance: probes to enumerate all solution rules",
        f"    cost-order baseline: {baseline} probes",
        f"    guided order:        {guided} probes "
        f"({baseline / max(guided, 1):.1f}x fewer)",
    )
    assert guided <= baseline
    benchmark(lambda: guidance.order(space))
