"""Shared benchmark telemetry: per-experiment trace artifacts.

Every benchmark module runs under :func:`telemetry_session` (wired up as
an autouse fixture in ``conftest.py``), which installs an ambient
:class:`~repro.telemetry.Tracer` writing ``BENCH_<name>.jsonl`` (raw
spans, via the JSONL exporter) and ``BENCH_<name>.json`` (the
``summarize()`` report plus wall time) into ``benchmarks/artifacts/``.
That populates the perf trajectory: every CI run leaves behind the
per-operation p50/p95 latencies and engine counters (rules grounded,
solver decisions/propagations, learner checks, coalition retransmits)
for each experiment.

Inspect an artifact with::

    PYTHONPATH=src python -m repro.telemetry.report benchmarks/artifacts/BENCH_e3_fig3a_xacml_correct.jsonl
"""

import contextlib
import json
import os
import time

from repro.analysis import lint_program
from repro.asp.solver import solve
from repro.telemetry import JsonlExporter, Tracer, summarize, tracer_scope

ARTIFACT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts")

__all__ = [
    "ARTIFACT_DIR",
    "artifact_paths",
    "telemetry_session",
    "lint_and_solve",
]


def lint_and_solve(program, source=None, roots=(), **solve_kwargs):
    """One lint+solve benchmark cell: static analysis, then the solver.

    Returns ``(diagnostics, result)`` where ``result.stats`` carries the
    run's :class:`~repro.asp.solver.SolveStats` (including
    ``stability_skips``, the Gelfond–Lifschitz checks the stratified
    fast path avoided).  Both phases run under the ambient tracer, so
    the BENCH_* artifacts record lint findings next to solver counters.
    """
    diagnostics = lint_program(program, source=source, roots=roots)
    result = solve(program, **solve_kwargs)
    return diagnostics, result


def artifact_paths(name):
    """The (jsonl, json) artifact paths for one experiment name."""
    return (
        os.path.join(ARTIFACT_DIR, f"BENCH_{name}.jsonl"),
        os.path.join(ARTIFACT_DIR, f"BENCH_{name}.json"),
    )


@contextlib.contextmanager
def telemetry_session(name):
    """Trace a benchmark experiment and persist its telemetry artifacts."""
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    jsonl_path, json_path = artifact_paths(name)
    tracer = Tracer(exporters=[JsonlExporter(jsonl_path)])
    start = time.monotonic()
    try:
        with tracer_scope(tracer):
            yield tracer
    finally:
        tracer.close()
        summary = summarize(tracer.spans)
        summary["experiment"] = name
        summary["wall_time_s"] = time.monotonic() - start
        summary["spans"] = len(tracer.spans)
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
