"""E8 — Section IV.E: federated-learning governance.

Simulates a coalition sharing regression insights under four
strategies and reports global-model test error.

Expected shape: learned symbolic governance ≈ oracle governance,
clearly better than naive combine-everything (poisoned updates) and
better than reject-everything (wasted trusted insights).
"""

import numpy as np
import pytest

from repro.apps.federated import (
    FederatedSimulation,
    GovernanceLearner,
    PartnerSpec,
    correct_action,
    sample_insight_offers,
)

PARTNERS = [
    PartnerSpec("ally_1", True, True, False, 80),
    PartnerSpec("ally_2", True, True, False, 80),
    PartnerSpec("drifted_ally", True, False, False, 80),
    PartnerSpec("shady_vendor", False, True, False, 80),
    PartnerSpec("attacker", False, False, True, 80),
]


@pytest.fixture(scope="module")
def governor():
    return GovernanceLearner().fit(sample_insight_offers(30, seed=1))


def _table(governor):
    strategies = {
        "learned": governor.decide,
        "oracle": correct_action,
        "combine-all": lambda offer: "combine",
        "reject-all": lambda offer: "reject",
    }
    results = {name: [] for name in strategies}
    for seed in range(8):
        sim = FederatedSimulation(PARTNERS, seed=seed, noise=1.0)
        for name, decide in strategies.items():
            results[name].append(sim.run_round(decide)["mse"])
    return {name: float(np.mean(values)) for name, values in results.items()}


def test_governance_table(report, governor, benchmark):
    table = benchmark.pedantic(lambda: _table(governor), rounds=1, iterations=1)
    report(
        "E8 — global-model test MSE by governance strategy (8 coalitions)",
        *(f"    {name:>12}: {mse:.3f}" for name, mse in table.items()),
        f"    learned-policy accuracy vs doctrine: "
        f"{governor.accuracy(sample_insight_offers(100, seed=9)):.3f}",
    )
    # who wins and by what factor:
    assert table["learned"] < table["combine-all"] / 2
    assert table["learned"] < table["reject-all"]
    assert table["learned"] <= table["oracle"] * 1.25 + 0.1


def test_governance_fit_time(benchmark):
    offers = sample_insight_offers(30, seed=1)
    benchmark.pedantic(
        lambda: GovernanceLearner().fit(offers), rounds=3, iterations=1
    )


def test_round_time(governor, benchmark):
    sim = FederatedSimulation(PARTNERS, seed=0, noise=1.0)
    benchmark(lambda: sim.run_round(governor.decide))
