"""E14 — static analysis and the stratified solver fast path.

Builds E3-style access-control programs (roles, resource types, definite
permit rules with stratified negation) at increasing scale, runs the
lint+solve cell over each, and compares solving with the
stratification/tightness fast path against the always-verify baseline.

Expected shape: the linter certifies the workload clean, every
Gelfond–Lifschitz stability check is skipped on the fast path
(``stability_checks == 0``, ``stability_skips == models``), and both
configurations return identical answer sets.
"""

import pytest

from repro.asp.parser import parse_program
from repro.asp.solver import solve

from common import lint_and_solve

ROLES = ("dba", "dev", "auditor")
ROOTS = ("permit",)


def workload(n_users, n_resources):
    """A stratified, tight access-control program of the E3 shape."""
    lines = []
    for u in range(n_users):
        lines.append(f"role(u{u}, {ROLES[u % len(ROLES)]}).")
    for r in range(n_resources):
        rtype = "db" if r % 2 == 0 else "doc"
        lines.append(f"rtype(r{r}, {rtype}).")
        if r % 3 == 0:
            lines.append(f"sensitive(r{r}).")
    lines += [
        "permit(U, R) :- role(U, dba), rtype(R, db).",
        "permit(U, R) :- role(U, dev), rtype(R, doc), not sensitive(R).",
        "permit(U, R) :- role(U, auditor), rtype(R, T), not sensitive(R).",
    ]
    return parse_program("\n".join(lines))


def normalized(models):
    return sorted(sorted(str(a) for a in m) for m in models)


@pytest.mark.parametrize("n_users,n_resources", [(6, 8), (12, 16), (24, 32)])
def test_lint_and_solve_cell(report, benchmark, n_users, n_resources):
    program = workload(n_users, n_resources)

    diagnostics, fast = lint_and_solve(program, source="e14", roots=ROOTS)
    slow = solve(program, use_fast_path=False)

    # the linter certifies the workload clean...
    assert [d for d in diagnostics if d.is_error] == []
    # ...the fast path skips every stability check...
    assert fast.stats.stability_checks == 0
    assert fast.stats.stability_skips > 0
    assert slow.stats.stability_skips == 0
    assert slow.stats.stability_checks > 0
    # ...and answers are identical (differential guarantee)
    assert normalized(fast) == normalized(slow)

    report(
        f"E14 — static analysis fast path ({n_users} users, {n_resources} resources)",
        f"{'config':>14} {'models':>7} {'GL checks':>10} {'GL skips':>9} {'steps':>8}",
        f"{'fast path':>14} {len(fast):>7} {fast.stats.stability_checks:>10} "
        f"{fast.stats.stability_skips:>9} {fast.stats.steps:>8}",
        f"{'always-check':>14} {len(slow):>7} {slow.stats.stability_checks:>10} "
        f"{slow.stats.stability_skips:>9} {slow.stats.steps:>8}",
    )

    benchmark.pedantic(
        lambda: lint_and_solve(program, source="e14", roots=ROOTS),
        rounds=3,
        iterations=1,
    )


def test_lint_overhead_is_small(report, benchmark):
    """Linting is static (no grounding): it must be cheap relative to solving."""
    import time

    program = workload(24, 32)
    start = time.monotonic()
    diagnostics, result = lint_and_solve(program, source="e14", roots=ROOTS)
    total = time.monotonic() - start

    from repro.analysis import lint_program

    start = time.monotonic()
    lint_program(program, source="e14", roots=ROOTS)
    lint_only = time.monotonic() - start

    assert diagnostics == lint_program(program, source="e14", roots=ROOTS)
    report(
        "E14 — lint overhead",
        f"lint-only: {lint_only * 1e3:.2f} ms of {total * 1e3:.2f} ms total "
        f"({100 * lint_only / max(total, 1e-9):.1f}%)",
    )
    benchmark.pedantic(
        lambda: lint_program(program, source="e14", roots=ROOTS),
        rounds=5,
        iterations=1,
    )


def test_unstratified_workload_keeps_full_checking(report):
    """Differential control: an unstratified variant must not skip checks."""
    base = workload(6, 8)
    text = "\n".join(
        [repr(r) for r in base.rules]
        + [
            "review(R) :- rtype(R, db), not cleared(R).",
            "cleared(R) :- rtype(R, db), not review(R).",
        ]
    )
    program = parse_program(text)
    diagnostics, result = lint_and_solve(
        program, source="e14_unstratified", roots=ROOTS + ("review", "cleared")
    )
    assert any(d.code == "ASP002" for d in diagnostics)
    assert result.stats.stability_skips == 0
    assert result.stats.stability_checks > 0
    report(
        "E14 — unstratified control",
        f"models={len(result)} GL checks={result.stats.stability_checks} "
        f"(fast path correctly disabled; ASP002 reported by the linter)",
    )
