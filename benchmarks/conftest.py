"""Shared benchmark utilities.

Each benchmark module regenerates one of the paper's tables/figures
(see DESIGN.md's experiment index).  Timing comes from pytest-benchmark;
the reproduced rows/series are printed straight to the terminal via the
``report`` fixture so they appear in ``bench_output.txt`` even under
pytest's output capturing.

Every benchmark module also runs under an ambient telemetry tracer
(``module_telemetry`` below): spans from the instrumented engine layers
are written to ``benchmarks/artifacts/BENCH_<module>.jsonl`` plus a
``summarize()`` report in ``BENCH_<module>.json`` — see ``common.py``.
"""

import pytest

from common import telemetry_session


@pytest.fixture
def report(capsys):
    """Print experiment tables to the real terminal, bypassing capture."""

    def _print(*lines):
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _print


@pytest.fixture(scope="module", autouse=True)
def module_telemetry(request):
    """Trace each benchmark module into its own BENCH_* artifact pair."""
    name = request.module.__name__
    if name.startswith("bench_"):
        name = name[len("bench_"):]
    with telemetry_session(name) as tracer:
        yield tracer

