"""Shared benchmark utilities.

Each benchmark module regenerates one of the paper's tables/figures
(see DESIGN.md's experiment index).  Timing comes from pytest-benchmark;
the reproduced rows/series are printed straight to the terminal via the
``report`` fixture so they appear in ``bench_output.txt`` even under
pytest's output capturing.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment tables to the real terminal, bypassing capture."""

    def _print(*lines):
        with capsys.disabled():
            print()
            for line in lines:
                print(line)

    return _print
